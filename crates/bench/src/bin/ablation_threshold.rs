//! Ablation: trace-head threshold sweep (DESIGN.md design choice 2).
//!
//! Dynamo's default threshold is 50. Too low wastes build time on lukewarm
//! code; too high delays the benefit of traces.

use rio_bench::{native_cycles, run_config, ClientKind};
use rio_core::Options;
use rio_sim::CpuKind;
use rio_workloads::{compile, suite_scaled, Category};

fn main() {
    let kind = CpuKind::Pentium4;
    let thresholds = [5u32, 15, 50, 150, 500, 5000];
    println!("Trace-threshold sweep: normalized execution time (geomean, full system)");
    println!("{:<10} {:>8} {:>8} {:>8}", "threshold", "int", "fp", "all");
    for t in thresholds {
        let mut int = Vec::new();
        let mut fp = Vec::new();
        for b in suite_scaled(3) {
            let image = compile(&b.source).expect("compiles");
            let (native, _, _) = native_cycles(&image, kind);
            let mut opts = Options::full();
            opts.trace_threshold = t;
            let r = run_config(&image, opts, kind, ClientKind::Null);
            let norm = r.cycles as f64 / native as f64;
            match b.category {
                Category::Int => int.push(norm),
                Category::Fp => fp.push(norm),
            }
        }
        let g = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
        let all: Vec<f64> = int.iter().chain(fp.iter()).copied().collect();
        println!("{:<10} {:>8.3} {:>8.3} {:>8.3}", t, g(&int), g(&fp), g(&all));
    }
}
