//! Table 2 reproduction: average time and memory to decode and then encode
//! the basic blocks of the benchmark suite at each level of instruction
//! representation.
//!
//! Paper values (IA-32, 2003 hardware): Level 0 = 2.12 µs / 64 B rising to
//! Level 4 = 61.79 µs / 791 B. Absolute numbers differ on modern hardware
//! and a different implementation; the *shape* — monotonically increasing
//! cost, a big jump from Level 0 to 1 (per-instruction structures), a small
//! step from 1 to 2 (opcode only), a moderate step to 3 (operands), and the
//! largest jump to 4 (full re-encode) — is the reproduction target.

use std::time::Instant;

use rio_bench::{jobs, run_parallel};
use rio_ia32::encode::encode_list;
use rio_ia32::{decode_sizeof, InstrList, Level};
use rio_sim::Image;
use rio_workloads::{compiled, suite_scaled};

/// Collect the byte ranges of every static basic block in an image.
fn block_ranges(code: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut off = 0usize;
    while off < code.len() {
        let Ok(len) = decode_sizeof(&code[off..]) else {
            break;
        };
        let (op, _) = match rio_ia32::decode::decode_opcode(&code[off..]) {
            Ok(x) => x,
            Err(_) => break,
        };
        off += len as usize;
        if op.is_cti() || op.is_halt() || matches!(op, rio_ia32::Opcode::Int) {
            out.push((start, off));
            start = off;
        }
    }
    if start < off {
        out.push((start, off));
    }
    out
}

fn main() {
    // Harvest a basic-block corpus from every benchmark binary. Compiling
    // and slicing runs on the worker pool; the timing loop below stays
    // strictly serial so wall-clock numbers are not skewed by contention.
    let suite = suite_scaled(1);
    let blocks: Vec<Vec<u8>> = run_parallel(&suite, jobs(), |_, b| {
        let image = compiled(b);
        block_ranges(&image.code)
            .into_iter()
            .map(|(s, e)| image.code[s..e].to_vec())
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let nblocks = blocks.len();
    assert!(nblocks > 100, "corpus too small");

    println!("Table 2: average time and memory to decode then encode one basic block");
    println!("({nblocks} static blocks from the benchmark suite)");
    println!(
        "{:<6} {:>12} {:>16}",
        "Level", "Time (ns)", "Memory (bytes)"
    );

    // Enough repetitions for stable wall-clock numbers.
    let reps = 2000 / (nblocks / 256).max(1);

    for level in [Level::L0, Level::L1, Level::L2, Level::L3, Level::L4] {
        let mut mem_total = 0usize;
        // Warm-up + memory measurement pass.
        for bytes in &blocks {
            let il = decode_at(bytes, level);
            mem_total += il.memory_bytes();
        }
        let start = Instant::now();
        for _ in 0..reps {
            for bytes in &blocks {
                let il = decode_at(bytes, level);
                let encoded = encode_list(&il, Image::CODE_BASE).expect("encodes");
                std::hint::black_box(encoded.bytes.len());
            }
        }
        let elapsed = start.elapsed();
        let ns = elapsed.as_nanos() as f64 / (reps * nblocks) as f64;
        let mem = mem_total as f64 / nblocks as f64;
        println!("{:<6} {:>12.1} {:>16.1}", level_name(level), ns, mem);
    }
}

fn level_name(level: Level) -> &'static str {
    match level {
        Level::L0 => "0",
        Level::L1 => "1",
        Level::L2 => "2",
        Level::L3 => "3",
        Level::L4 => "4",
    }
}

/// Decode a block at the given level; Level 4 is Level 3 with raw bits
/// invalidated (every instruction must be re-encoded from operands).
fn decode_at(bytes: &[u8], level: Level) -> InstrList {
    match level {
        Level::L4 => {
            let mut il =
                InstrList::decode_block(bytes, Image::CODE_BASE, Level::L3).expect("decodes");
            let ids: Vec<_> = il.ids().collect();
            for id in ids {
                il.get_mut(id).invalidate_raw();
            }
            il
        }
        lv => InstrList::decode_block(bytes, Image::CODE_BASE, lv).expect("decodes"),
    }
}
