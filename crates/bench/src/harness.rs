//! Shared measurement harness for the experiment binaries.

use rio_clients::{CTrace, Combined, IbDispatch, Inc2Add, Rlr};
use rio_core::{NullClient, Options, Rio, RioRunResult, Stats};
use rio_sim::{run_native, CpuKind, Image};

/// Which client to couple with the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientKind {
    /// Base RIO, no client transformation.
    Null,
    /// Redundant load removal (§4.1).
    Rlr,
    /// Strength reduction (§4.2).
    Inc2Add,
    /// Adaptive indirect branch dispatch (§4.3).
    IbDispatch,
    /// Custom call-inlining traces (§4.4).
    CTrace,
    /// All four in combination.
    Combined,
}

impl ClientKind {
    /// Display label matching Figure 5's legend.
    pub fn label(self) -> &'static str {
        match self {
            ClientKind::Null => "base",
            ClientKind::Rlr => "rlr",
            ClientKind::Inc2Add => "inc2add",
            ClientKind::IbDispatch => "ibdispatch",
            ClientKind::CTrace => "ctraces",
            ClientKind::Combined => "combined",
        }
    }

    /// All six Figure 5 bars, in order.
    pub const FIGURE5: [ClientKind; 6] = [
        ClientKind::Null,
        ClientKind::Rlr,
        ClientKind::Inc2Add,
        ClientKind::IbDispatch,
        ClientKind::CTrace,
        ClientKind::Combined,
    ];
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct ConfigResult {
    /// Simulated cycles.
    pub cycles: u64,
    /// Application instructions executed in cache/emulation.
    pub instructions: u64,
    /// Engine statistics.
    pub stats: Stats,
    /// Exit code (for output validation).
    pub exit_code: i32,
    /// Application output (for validation).
    pub output: String,
}

impl From<RioRunResult> for ConfigResult {
    fn from(r: RioRunResult) -> ConfigResult {
        ConfigResult {
            cycles: r.counters.cycles,
            instructions: r.counters.instructions,
            stats: r.stats,
            exit_code: r.exit_code,
            output: r.app_output,
        }
    }
}

/// Simulated cycles of a native run.
pub fn native_cycles(image: &Image, kind: CpuKind) -> (u64, i32, String) {
    let r = run_native(image, kind);
    (r.counters.cycles, r.exit_code, r.output)
}

/// Run an image under the engine with the given options and client.
pub fn run_config(
    image: &Image,
    options: Options,
    kind: CpuKind,
    client: ClientKind,
) -> ConfigResult {
    match client {
        ClientKind::Null => Rio::new(image, options, kind, NullClient).run().into(),
        ClientKind::Rlr => Rio::new(image, options, kind, Rlr::new()).run().into(),
        ClientKind::Inc2Add => Rio::new(image, options, kind, Inc2Add::new()).run().into(),
        ClientKind::IbDispatch => Rio::new(image, options, kind, IbDispatch::new()).run().into(),
        ClientKind::CTrace => Rio::new(image, options, kind, CTrace::new()).run().into(),
        ClientKind::Combined => Rio::new(image, options, kind, Combined::new()).run().into(),
    }
}

/// Convenience: cycles of a full-system run with a client.
pub fn rio_cycles(image: &Image, kind: CpuKind, client: ClientKind) -> u64 {
    run_config(image, Options::full(), kind, client).cycles
}
