//! Shared measurement harness for the experiment binaries.
//!
//! Besides the single-run helpers, this module provides the worker-pool
//! [`run_parallel`] runner every experiment binary is built on: the engine
//! is `Send`, simulated cycle counts are independent of host scheduling,
//! and results are returned in item order — so any `--jobs N` produces
//! byte-identical tables, just faster.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rio_clients::{CTrace, Combined, IbDispatch, Inc2Add, Rlr};
use rio_core::{NullClient, Options, Rio, RioRunResult, Stats};
use rio_sim::{run_native, CpuKind, Image};

/// Which client to couple with the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientKind {
    /// Base RIO, no client transformation.
    Null,
    /// Redundant load removal (§4.1).
    Rlr,
    /// Strength reduction (§4.2).
    Inc2Add,
    /// Adaptive indirect branch dispatch (§4.3).
    IbDispatch,
    /// Custom call-inlining traces (§4.4).
    CTrace,
    /// All four in combination.
    Combined,
}

impl ClientKind {
    /// Display label matching Figure 5's legend.
    pub fn label(self) -> &'static str {
        match self {
            ClientKind::Null => "base",
            ClientKind::Rlr => "rlr",
            ClientKind::Inc2Add => "inc2add",
            ClientKind::IbDispatch => "ibdispatch",
            ClientKind::CTrace => "ctraces",
            ClientKind::Combined => "combined",
        }
    }

    /// All six Figure 5 bars, in order.
    pub const FIGURE5: [ClientKind; 6] = [
        ClientKind::Null,
        ClientKind::Rlr,
        ClientKind::Inc2Add,
        ClientKind::IbDispatch,
        ClientKind::CTrace,
        ClientKind::Combined,
    ];
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct ConfigResult {
    /// Simulated cycles.
    pub cycles: u64,
    /// Application instructions executed in cache/emulation.
    pub instructions: u64,
    /// Engine statistics.
    pub stats: Stats,
    /// Exit code (for output validation).
    pub exit_code: i32,
    /// Application output (for validation).
    pub output: String,
    /// Unhandled guest fault that ended the run, if any (the exit code is
    /// then `128 + fault kind`). Suites report these as failures rather
    /// than aborting the whole table.
    pub fault: Option<String>,
}

impl From<RioRunResult> for ConfigResult {
    fn from(r: RioRunResult) -> ConfigResult {
        ConfigResult {
            cycles: r.counters.cycles,
            instructions: r.counters.instructions,
            stats: r.stats,
            exit_code: r.exit_code,
            output: r.app_output,
            fault: r.fault.map(|f| f.message),
        }
    }
}

/// Simulated cycles of a native run.
pub fn native_cycles(image: &Image, kind: CpuKind) -> (u64, i32, String) {
    let r = run_native(image, kind);
    (r.counters.cycles, r.exit_code, r.output)
}

/// Run an image under the engine with the given options and client.
pub fn run_config(
    image: &Image,
    options: Options,
    kind: CpuKind,
    client: ClientKind,
) -> ConfigResult {
    match client {
        ClientKind::Null => Rio::new(image, options, kind, NullClient).run().into(),
        ClientKind::Rlr => Rio::new(image, options, kind, Rlr::new()).run().into(),
        ClientKind::Inc2Add => Rio::new(image, options, kind, Inc2Add::new()).run().into(),
        ClientKind::IbDispatch => Rio::new(image, options, kind, IbDispatch::new())
            .run()
            .into(),
        ClientKind::CTrace => Rio::new(image, options, kind, CTrace::new()).run().into(),
        ClientKind::Combined => Rio::new(image, options, kind, Combined::new()).run().into(),
    }
}

/// Convenience: cycles of a full-system run with a client.
pub fn rio_cycles(image: &Image, kind: CpuKind, client: ClientKind) -> u64 {
    run_config(image, Options::full(), kind, client).cycles
}

// ----- parallel suite runner ----------------------------------------------

/// Worker count for the experiment binaries: an explicit `--jobs N`
/// (also `-j N` / `--jobs=N`) on the command line wins, then the
/// `RIO_JOBS` environment variable, then the host's available parallelism.
pub fn jobs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--jobs" || a == "-j" {
            if let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(rest) = a.strip_prefix("--jobs=") {
            if let Ok(n) = rest.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    if let Some(n) = std::env::var("RIO_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Apply `f` to every item on a pool of `jobs` worker threads and return
/// the results **in item order**.
///
/// Work is distributed by atomic index-stealing, so idle workers pick up
/// the next unclaimed item regardless of how long earlier items take. The
/// output ordering (and therefore every table printed from it) is
/// independent of the job count and of host scheduling; only wall-clock
/// time changes. Simulated measurements are unaffected by parallelism
/// because each run owns its whole engine.
///
/// # Panics
///
/// Propagates a panic from any worker (via `std::thread::scope`).
pub fn run_parallel<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding a result slot")
                .expect("every item was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order_for_any_job_count() {
        let items: Vec<usize> = (0..37).collect();
        let reference: Vec<usize> = items.iter().map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = run_parallel(&items, jobs, |idx, &n| {
                // Vary per-item latency so completion order differs from
                // item order under real parallelism.
                if idx % 5 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                n * n
            });
            assert_eq!(got, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = run_parallel(&[] as &[u32], 4, |_, &n| n);
        assert!(got.is_empty());
    }
}
