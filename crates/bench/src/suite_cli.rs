//! Shared command-line plumbing for the scenario suites.
//!
//! `rio faults`, `rio smc`, `rio verify`, and `rio fuzz` all follow the
//! same shape: parse `--cpu p3|p4` and `--jobs N`, fan scenarios out over
//! [`run_parallel`](crate::run_parallel), and print one stable report line
//! per scenario with `Err` rows counted as failures. This module holds
//! that shape once; suites with extra flags extend the parser through
//! [`parse_suite_args_with`].

use std::process::ExitCode;

use rio_sim::CpuKind;

/// Parsed common suite options.
#[derive(Clone, Copy, Debug)]
pub struct SuiteArgs {
    pub cpu: CpuKind,
    pub jobs: usize,
}

/// Parse `--cpu p3|p4` / `--jobs N`, handing any other flag to `extra`.
///
/// `extra` receives the flag and the argument iterator (so it can consume
/// a value); it returns `Ok(true)` if it recognized the flag, `Ok(false)`
/// to make the flag an "unknown argument" error.
pub fn parse_suite_args_with<F>(args: &[String], mut extra: F) -> Result<SuiteArgs, String>
where
    F: FnMut(&str, &mut std::slice::Iter<'_, String>) -> Result<bool, String>,
{
    let mut cpu = CpuKind::Pentium4;
    let mut jobs = crate::jobs();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cpu" => {
                cpu = match it.next().ok_or("--cpu needs a value")?.as_str() {
                    "p3" => CpuKind::Pentium3,
                    "p4" => CpuKind::Pentium4,
                    other => return Err(format!("unknown cpu `{other}` (p3|p4)")),
                };
            }
            "--jobs" | "-j" => {
                jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad job count: {e}"))?
                    .max(1);
            }
            other => {
                if !extra(other, &mut it)? {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
    }
    Ok(SuiteArgs { cpu, jobs })
}

/// Parse the common suite options only (no suite-specific flags).
pub fn parse_suite_args(args: &[String]) -> Result<SuiteArgs, String> {
    parse_suite_args_with(args, |_, _| Ok(false))
}

/// Print scenario report lines (stable order from
/// [`run_parallel`](crate::run_parallel)); `Err` rows count as failures.
pub fn print_suite_rows(rows: &[Result<String, String>], what: &str) -> Result<ExitCode, String> {
    let mut failures = 0usize;
    for row in rows {
        match row {
            Ok(line) => println!("{line}"),
            Err(line) => {
                println!("FAIL {line}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} {what} scenario(s) failed"));
    }
    println!("all {} {what} scenarios passed", rows.len());
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_common_flags() {
        let a = parse_suite_args(&argv(&["--cpu", "p3", "--jobs", "3"])).unwrap();
        assert!(matches!(a.cpu, CpuKind::Pentium3));
        assert_eq!(a.jobs, 3);
        assert!(parse_suite_args(&argv(&["--bogus"])).is_err());
        assert!(parse_suite_args(&argv(&["--cpu"])).is_err());
        assert!(parse_suite_args(&argv(&["--jobs", "zero"])).is_err());
    }

    #[test]
    fn jobs_clamps_to_at_least_one() {
        let a = parse_suite_args(&argv(&["--jobs", "0"])).unwrap();
        assert_eq!(a.jobs, 1);
    }

    #[test]
    fn extra_flags_flow_through_the_callback() {
        let mut seen = None;
        let a = parse_suite_args_with(&argv(&["--seeds", "64", "--jobs", "2"]), |flag, it| {
            if flag == "--seeds" {
                seen = Some(it.next().cloned().ok_or("--seeds needs a value")?);
                Ok(true)
            } else {
                Ok(false)
            }
        })
        .unwrap();
        assert_eq!(seen.as_deref(), Some("64"));
        assert_eq!(a.jobs, 2);
    }
}
