//! # rio-bench — benchmark harnesses
//!
//! Binaries that regenerate the paper's evaluation artifacts:
//!
//! * `table1` — Table 1 (emulation → cache → links → traces) on crafty/vpr.
//! * `table2` — Table 2 (decode+encode time and memory per level).
//! * `figure5` — Figure 5 (normalized execution time, six client bars,
//!   whole suite).
//! * `ablation_threshold`, `ablation_tracesize` — parameter sweeps for the
//!   design choices called out in DESIGN.md.
//!
//! Every binary distributes its engine runs over the worker-pool runner in
//! [`harness`] (`--jobs N` / `RIO_JOBS`, default: available parallelism).
//! Because the simulation is deterministic and results are collected in
//! item order, output is byte-identical for any job count.
//!
//! Micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]

pub mod harness;
pub mod suite_cli;

pub use harness::{
    jobs, native_cycles, rio_cycles, run_config, run_parallel, ClientKind, ConfigResult,
};
pub use suite_cli::{parse_suite_args, parse_suite_args_with, print_suite_rows, SuiteArgs};
