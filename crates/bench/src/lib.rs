//! # rio-bench — benchmark harnesses
//!
//! Binaries that regenerate the paper's evaluation artifacts:
//!
//! * `table1` — Table 1 (emulation → cache → links → traces) on crafty/vpr.
//! * `table2` — Table 2 (decode+encode time and memory per level).
//! * `figure5` — Figure 5 (normalized execution time, six client bars,
//!   whole suite).
//! * `ablation_threshold`, `ablation_tracesize` — parameter sweeps for the
//!   design choices called out in DESIGN.md.
//!
//! Criterion micro-benchmarks live under `benches/`.

pub mod harness;

pub use harness::{native_cycles, rio_cycles, run_config, ClientKind, ConfigResult};
