//! Delta-debugging shrinker for findings.
//!
//! When the oracle reports a divergence, the raw generated program is
//! rarely the story — most of its statements are noise. The shrinker
//! minimizes along both axes of a finding:
//!
//! * **Statement tree** — greedily apply the first node-count-reducing
//!   edit that still reproduces the failure, and repeat to a fixpoint.
//!   Edits are: drop a statement, hoist a compound statement's body (or a
//!   branch/switch arm) in its place, hoist a subexpression over its
//!   parent, and collapse a non-leaf expression to a constant. Every edit
//!   strictly reduces the node count, so termination is structural, and
//!   the candidate order is fixed, so the minimum is deterministic.
//! * **Configuration** — walk the failing configuration down the lattice
//!   ([`FuzzConfig::simpler`]) as long as the divergence survives, so a
//!   finding is reported against the simplest engine configuration that
//!   exhibits it.
//!
//! The oracle is a plain closure, so the same machinery minimizes real
//! differential findings (closure = "this config pair still disagrees")
//! and harness self-tests (closure = "an injected fault still causes
//! divergence").

use crate::gen::{E, S};
use crate::oracle::FuzzConfig;

/// Total node count of a statement list.
fn nodes(stmts: &[S]) -> usize {
    stmts.iter().map(S::nodes).sum()
}

/// Minimize a statement list while `still_fails` keeps returning `true`.
///
/// Greedy first-improvement search: candidates are enumerated in a fixed
/// order (whole-statement drops first, then body hoists, then in-place
/// statement/expression reductions), the first reproducing candidate is
/// taken, and the search restarts from it. Every candidate has strictly
/// fewer nodes than its origin, so the loop terminates; the result still
/// satisfies `still_fails` (and equals the input if nothing smaller does).
pub fn shrink_program<F>(stmts: &[S], mut still_fails: F) -> Vec<S>
where
    F: FnMut(&[S]) -> bool,
{
    let mut current = stmts.to_vec();
    'outer: loop {
        for candidate in list_variants(&current) {
            debug_assert!(nodes(&candidate) < nodes(&current));
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

/// Minimize the failing configuration while `still_fails` keeps returning
/// `true`, preferring the nearest simpler lattice point each round.
pub fn shrink_config<F>(cfg: FuzzConfig, mut still_fails: F) -> FuzzConfig
where
    F: FnMut(FuzzConfig) -> bool,
{
    let mut current = cfg;
    'outer: loop {
        for candidate in current.simpler() {
            if still_fails(candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

/// All one-edit reductions of a statement list, in preference order.
fn list_variants(stmts: &[S]) -> Vec<Vec<S>> {
    let mut out = Vec::new();
    // Drop each statement outright.
    for i in 0..stmts.len() {
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);
    }
    // Hoist a compound statement's body (or one arm) into its place.
    for i in 0..stmts.len() {
        for repl in hoists(&stmts[i]) {
            let mut v = stmts.to_vec();
            v.splice(i..=i, repl);
            out.push(v);
        }
    }
    // In-place reductions of a single statement.
    for i in 0..stmts.len() {
        for s in stmt_variants(&stmts[i]) {
            let mut v = stmts.to_vec();
            v[i] = s;
            out.push(v);
        }
    }
    out
}

/// Bodies that can stand in for a compound statement (each strictly
/// smaller: the replaced node and its condition/selector disappear).
fn hoists(s: &S) -> Vec<Vec<S>> {
    match s {
        S::Loop(_, body) => vec![body.clone()],
        S::If(_, t, e) => vec![t.clone(), e.clone()],
        S::Switch(_, cases) => cases.clone(),
        _ => Vec::new(),
    }
}

/// One-edit reductions of a single statement (same statement kind, smaller
/// contents).
fn stmt_variants(s: &S) -> Vec<S> {
    match s {
        S::Assign(v, e) => expr_variants(e)
            .into_iter()
            .map(|e| S::Assign(*v, e))
            .collect(),
        S::Store(i, e) => {
            let mut out: Vec<S> = expr_variants(i)
                .into_iter()
                .map(|i2| S::Store(i2, e.clone()))
                .collect();
            out.extend(
                expr_variants(e)
                    .into_iter()
                    .map(|e2| S::Store(i.clone(), e2)),
            );
            out
        }
        S::CallHelper(e) => expr_variants(e).into_iter().map(S::CallHelper).collect(),
        S::Print(e) => expr_variants(e).into_iter().map(S::Print).collect(),
        S::Loop(n, body) => list_variants(body)
            .into_iter()
            .map(|b| S::Loop(*n, b))
            .collect(),
        S::If(c, t, e) => {
            let mut out: Vec<S> = expr_variants(c)
                .into_iter()
                .map(|c2| S::If(c2, t.clone(), e.clone()))
                .collect();
            out.extend(
                list_variants(t)
                    .into_iter()
                    .map(|t2| S::If(c.clone(), t2, e.clone())),
            );
            out.extend(
                list_variants(e)
                    .into_iter()
                    .map(|e2| S::If(c.clone(), t.clone(), e2)),
            );
            out
        }
        S::Switch(e, cases) => {
            let mut out: Vec<S> = expr_variants(e)
                .into_iter()
                .map(|e2| S::Switch(e2, cases.clone()))
                .collect();
            for (k, case) in cases.iter().enumerate() {
                for c2 in list_variants(case) {
                    let mut cs = cases.clone();
                    cs[k] = c2;
                    out.push(S::Switch(e.clone(), cs));
                }
            }
            out
        }
        S::Bump(..) | S::Patch(..) => Vec::new(),
    }
}

/// Direct subexpressions of `e` (hoisting candidates).
fn subexprs(e: &E) -> Vec<&E> {
    match e {
        E::K(_) | E::V(_) | E::G(_) => Vec::new(),
        E::Load(a) | E::Mask(a) | E::Helper(a) | E::IHelper(a) | E::Rec(a) => vec![a],
        E::Add(a, b)
        | E::Sub(a, b)
        | E::Mul(a, b)
        | E::Cmp(a, b)
        | E::DivG(a, b)
        | E::RemG(a, b)
        | E::DivU(a, b)
        | E::RemU(a, b)
        | E::TableCall(a, b) => vec![a, b],
    }
}

/// One-edit reductions of an expression: hoist each subexpression over its
/// parent, then collapse the whole thing to `0`. Leaves are irreducible
/// (swapping one leaf for another would not shrink anything and could loop
/// forever).
fn expr_variants(e: &E) -> Vec<E> {
    let mut out: Vec<E> = subexprs(e).into_iter().cloned().collect();
    // Recursive reductions within subtrees.
    match e {
        E::Load(a) => out.extend(expr_variants(a).into_iter().map(|a| E::Load(Box::new(a)))),
        E::Mask(a) => out.extend(expr_variants(a).into_iter().map(|a| E::Mask(Box::new(a)))),
        E::Helper(a) => out.extend(expr_variants(a).into_iter().map(|a| E::Helper(Box::new(a)))),
        E::IHelper(a) => out.extend(
            expr_variants(a)
                .into_iter()
                .map(|a| E::IHelper(Box::new(a))),
        ),
        E::Rec(a) => out.extend(expr_variants(a).into_iter().map(|a| E::Rec(Box::new(a)))),
        E::Add(a, b)
        | E::Sub(a, b)
        | E::Mul(a, b)
        | E::Cmp(a, b)
        | E::DivG(a, b)
        | E::RemG(a, b)
        | E::DivU(a, b)
        | E::RemU(a, b)
        | E::TableCall(a, b) => {
            let rebuild = |x: E, y: E| match e {
                E::Add(..) => E::Add(Box::new(x), Box::new(y)),
                E::Sub(..) => E::Sub(Box::new(x), Box::new(y)),
                E::Mul(..) => E::Mul(Box::new(x), Box::new(y)),
                E::Cmp(..) => E::Cmp(Box::new(x), Box::new(y)),
                E::DivG(..) => E::DivG(Box::new(x), Box::new(y)),
                E::RemG(..) => E::RemG(Box::new(x), Box::new(y)),
                E::DivU(..) => E::DivU(Box::new(x), Box::new(y)),
                E::RemU(..) => E::RemU(Box::new(x), Box::new(y)),
                _ => E::TableCall(Box::new(x), Box::new(y)),
            };
            out.extend(
                expr_variants(a)
                    .into_iter()
                    .map(|a2| rebuild(a2, (**b).clone())),
            );
            out.extend(
                expr_variants(b)
                    .into_iter()
                    .map(|b2| rebuild((**a).clone(), b2)),
            );
        }
        E::K(_) | E::V(_) | E::G(_) => {}
    }
    // Constant collapse last — strictly smaller only for non-leaves.
    if e.nodes() > 1 {
        out.push(E::K(0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ClientChoice, EngineConfig};

    /// Whether any `Print` statement survives anywhere in the tree.
    fn has_print(stmts: &[S]) -> bool {
        stmts.iter().any(|s| match s {
            S::Print(_) => true,
            S::Loop(_, b) => has_print(b),
            S::If(_, t, e) => has_print(t) || has_print(e),
            S::Switch(_, cs) => cs.iter().any(|c| has_print(c)),
            _ => false,
        })
    }

    #[test]
    fn shrinks_to_the_single_relevant_statement() {
        let big = vec![
            S::Assign(0, E::Add(Box::new(E::K(3)), Box::new(E::V(1)))),
            S::Loop(
                4,
                vec![
                    S::Bump(2, true),
                    S::Print(E::Mul(
                        Box::new(E::Mask(Box::new(E::G(0)))),
                        Box::new(E::K(9)),
                    )),
                ],
            ),
            S::If(E::Cmp(Box::new(E::V(0)), Box::new(E::K(5))), vec![], vec![]),
        ];
        let small = shrink_program(&big, has_print);
        assert!(has_print(&small), "shrinker lost the failure");
        // Fully minimized: one Print of a single leaf expression.
        assert_eq!(small.len(), 1, "extra statements survived: {small:?}");
        assert!(
            matches!(small[0], S::Print(_)),
            "wrong statement kept: {small:?}"
        );
        assert_eq!(nodes(&small), 2, "not fully minimized: {small:?}");
    }

    #[test]
    fn returns_input_when_nothing_smaller_fails() {
        let minimal = vec![S::Print(E::K(0))];
        assert_eq!(shrink_program(&minimal, has_print), minimal);
    }

    #[test]
    fn config_shrinks_down_the_lattice() {
        let from = FuzzConfig {
            engine: EngineConfig::Verified,
            client: ClientChoice::Combined,
        };
        // Divergence reproduces everywhere: ends at the global minimum.
        let all = shrink_config(from, |_| true);
        assert_eq!(
            all,
            FuzzConfig {
                engine: EngineConfig::Emulate,
                client: ClientChoice::Null
            }
        );
        // Divergence needs the bounded cache: client drops, engine stays.
        let bounded = FuzzConfig {
            engine: EngineConfig::Bounded,
            client: ClientChoice::Combined,
        };
        let kept = shrink_config(bounded, |c| c.engine == EngineConfig::Bounded);
        assert_eq!(
            kept,
            FuzzConfig {
                engine: EngineConfig::Bounded,
                client: ClientChoice::Null
            }
        );
    }
}
