//! The configuration-matrix oracle: one generated program, every engine
//! configuration, one verdict.
//!
//! The paper's transparency claim (§2) is that an application behaves
//! identically under the engine and natively — not just in its output, but
//! in every architecturally visible effect. The oracle operationalizes
//! that: a native interpreter run is the baseline, and the program is then
//! run through a lattice of engine configurations (emulation; code cache
//! with traces off and on; a tiny bounded cache under FIFO eviction;
//! one-instruction `Rio::step` budgets; incremental verification) crossed
//! with the null and combined clients. Every run must match the baseline's
//! output, exit code, and final register/global state digest, and verified
//! runs must report zero violations. Any difference is a [`Mismatch`] —
//! a finding, never a flake, because every run is deterministic.

use std::fmt;

use rio_clients::Combined;
use rio_core::{Client, NullClient, Options, Rio, StepBudget, StepOutcome};
use rio_sim::{run_native, CpuKind, Image};

/// The engine-side axis of the configuration lattice, ordered simplest
/// first (the order the config shrinker prefers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EngineConfig {
    /// Pure emulation — no code cache at all.
    Emulate,
    /// Basic-block cache with direct/indirect links but traces disabled.
    CacheNoTraces,
    /// The full system (links + traces).
    Full,
    /// Full system under a tiny `cache_limit` (2 KB), forcing FIFO
    /// eviction to interleave with everything else.
    Bounded,
    /// Full system driven through one-instruction [`Rio::step`] budgets, so
    /// every engine safe point is crossed suspended.
    Stepped,
    /// Full system with incremental verification at every safe point plus
    /// a final whole-cache sweep; violations fail the comparison.
    Verified,
}

impl EngineConfig {
    /// Every engine configuration, simplest first.
    pub const ALL: [EngineConfig; 6] = [
        EngineConfig::Emulate,
        EngineConfig::CacheNoTraces,
        EngineConfig::Full,
        EngineConfig::Bounded,
        EngineConfig::Stepped,
        EngineConfig::Verified,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EngineConfig::Emulate => "emulate",
            EngineConfig::CacheNoTraces => "cache-notrace",
            EngineConfig::Full => "full",
            EngineConfig::Bounded => "bounded",
            EngineConfig::Stepped => "stepped",
            EngineConfig::Verified => "verified",
        }
    }

    /// Parse a [`EngineConfig::label`] back.
    pub fn parse(s: &str) -> Option<EngineConfig> {
        EngineConfig::ALL.into_iter().find(|c| c.label() == s)
    }
}

/// The client axis of the lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ClientChoice {
    /// Base engine, no transformation.
    Null,
    /// All four sample optimizations in combination.
    Combined,
}

impl ClientChoice {
    /// Both client choices, simplest first.
    pub const ALL: [ClientChoice; 2] = [ClientChoice::Null, ClientChoice::Combined];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ClientChoice::Null => "null",
            ClientChoice::Combined => "combined",
        }
    }

    /// Parse a [`ClientChoice::label`] back.
    pub fn parse(s: &str) -> Option<ClientChoice> {
        ClientChoice::ALL.into_iter().find(|c| c.label() == s)
    }
}

/// One point of the configuration lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FuzzConfig {
    /// Engine configuration.
    pub engine: EngineConfig,
    /// Coupled client.
    pub client: ClientChoice,
}

impl FuzzConfig {
    /// The whole lattice: every engine config × every client, in a fixed
    /// deterministic order.
    pub fn matrix() -> Vec<FuzzConfig> {
        let mut out = Vec::new();
        for engine in EngineConfig::ALL {
            for client in ClientChoice::ALL {
                out.push(FuzzConfig { engine, client });
            }
        }
        out
    }

    /// Strictly simpler configurations to try while shrinking the config
    /// axes of a finding, nearest first (drop the client, then step the
    /// engine axis down).
    pub fn simpler(self) -> Vec<FuzzConfig> {
        let mut out = Vec::new();
        if self.client == ClientChoice::Combined {
            out.push(FuzzConfig {
                client: ClientChoice::Null,
                ..self
            });
        }
        let downgrades: &[EngineConfig] = match self.engine {
            EngineConfig::Emulate => &[],
            EngineConfig::CacheNoTraces => &[EngineConfig::Emulate],
            EngineConfig::Full => &[EngineConfig::CacheNoTraces, EngineConfig::Emulate],
            // The bounded / stepped / verified points are the full system
            // plus one twist: dropping the twist is the natural first step.
            EngineConfig::Bounded | EngineConfig::Stepped | EngineConfig::Verified => &[
                EngineConfig::Full,
                EngineConfig::CacheNoTraces,
                EngineConfig::Emulate,
            ],
        };
        for &engine in downgrades {
            out.push(FuzzConfig { engine, ..self });
            if self.client == ClientChoice::Combined {
                out.push(FuzzConfig {
                    engine,
                    client: ClientChoice::Null,
                });
            }
        }
        out
    }

    /// Parse a `engine+client` label pair (the corpus format).
    pub fn parse(s: &str) -> Option<FuzzConfig> {
        let (e, c) = s.split_once('+')?;
        Some(FuzzConfig {
            engine: EngineConfig::parse(e)?,
            client: ClientChoice::parse(c)?,
        })
    }
}

impl fmt::Display for FuzzConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.engine.label(), self.client.label())
    }
}

/// Everything one run exposes for comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Application exit code.
    pub exit_code: i32,
    /// Buffered application output.
    pub output: String,
    /// Final register + global-state digest
    /// ([`rio_sim::Machine::app_state_digest`]).
    pub state_digest: u64,
    /// Verifier violations (always 0 for unverified runs).
    pub violations: u64,
    /// Unhandled terminal fault, if any.
    pub fault: Option<String>,
}

/// A divergence between the native baseline and one engine configuration —
/// the fuzzer's unit of discovery.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// The configuration that disagreed with native execution.
    pub config: FuzzConfig,
    /// Which comparison failed (`output`, `exit code`, `state digest`,
    /// `violations`).
    pub axis: &'static str,
    /// What the native baseline produced.
    pub expected: String,
    /// What the engine configuration produced.
    pub actual: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} diverged on {}: native {:?} vs {:?}",
            self.config, self.axis, self.expected, self.actual
        )
    }
}

/// Run the native interpreter baseline.
pub fn run_native_baseline(image: &Image, cpu: CpuKind) -> Outcome {
    let r = run_native(image, cpu);
    Outcome {
        exit_code: r.exit_code,
        output: r.output,
        state_digest: r.state_digest,
        violations: 0,
        fault: None,
    }
}

/// Run one engine configuration to completion.
pub fn run_engine(image: &Image, cfg: FuzzConfig, cpu: CpuKind) -> Outcome {
    fn drive<C: Client>(
        image: &Image,
        opts: Options,
        cpu: CpuKind,
        stepped: bool,
        sweep: bool,
        client: C,
    ) -> Outcome {
        let mut rio = Rio::new(image, opts, cpu, client);
        let result = if stepped {
            loop {
                match rio.step(StepBudget::instructions(1)) {
                    StepOutcome::Running(_) => {}
                    StepOutcome::Exited(code) => break rio.result_snapshot(code),
                    StepOutcome::Faulted(f) => {
                        let mut r = rio.result_snapshot(f.exit_code());
                        r.fault = Some(f);
                        break r;
                    }
                }
            }
        } else {
            rio.run()
        };
        let mut violations = result.stats.violations;
        if sweep {
            violations += rio.core.verify_cache().len() as u64;
        }
        Outcome {
            exit_code: result.exit_code,
            output: result.app_output,
            state_digest: rio.core.machine.app_state_digest(image),
            violations,
            fault: result.fault.map(|f| f.message),
        }
    }
    let mut opts = match cfg.engine {
        EngineConfig::Emulate => Options::emulation(),
        EngineConfig::CacheNoTraces => Options::with_indirect_links(),
        EngineConfig::Full
        | EngineConfig::Bounded
        | EngineConfig::Stepped
        | EngineConfig::Verified => Options::full(),
    };
    if cfg.engine == EngineConfig::Bounded {
        opts.cache_limit = Some(2048);
    }
    if cfg.engine == EngineConfig::Verified {
        opts.verify = true;
    }
    let stepped = cfg.engine == EngineConfig::Stepped;
    let sweep = cfg.engine == EngineConfig::Verified;
    match cfg.client {
        ClientChoice::Null => drive(image, opts, cpu, stepped, sweep, NullClient),
        ClientChoice::Combined => drive(image, opts, cpu, stepped, sweep, Combined::new()),
    }
}

/// Compare one engine outcome against the native baseline.
pub fn compare(cfg: FuzzConfig, native: &Outcome, engine: &Outcome) -> Result<(), Mismatch> {
    let mismatch = |axis, expected: String, actual: String| {
        Err(Mismatch {
            config: cfg,
            axis,
            expected,
            actual,
        })
    };
    if engine.output != native.output {
        return mismatch("output", native.output.clone(), engine.output.clone());
    }
    if engine.exit_code != native.exit_code {
        return mismatch(
            "exit code",
            native.exit_code.to_string(),
            engine.exit_code.to_string(),
        );
    }
    if engine.state_digest != native.state_digest {
        return mismatch(
            "state digest",
            format!("{:016x}", native.state_digest),
            format!("{:016x}", engine.state_digest),
        );
    }
    if engine.violations != 0 {
        return mismatch(
            "violations",
            "0".into(),
            format!("{} (fault: {:?})", engine.violations, engine.fault),
        );
    }
    Ok(())
}

/// Summary of a clean matrix pass.
#[derive(Clone, Copy, Debug)]
pub struct CheckSummary {
    /// Number of engine configurations that agreed with native.
    pub configs: usize,
    /// The (shared) final-state digest.
    pub state_digest: u64,
    /// The (shared) exit code.
    pub exit_code: i32,
    /// Number of output lines the program printed.
    pub output_lines: usize,
}

/// Run the full configuration matrix over a compiled image and compare
/// every point against the native baseline. The first divergence wins (the
/// matrix order is fixed, so "first" is deterministic).
pub fn check_image(image: &Image, cpu: CpuKind) -> Result<CheckSummary, Box<Mismatch>> {
    let native = run_native_baseline(image, cpu);
    let matrix = FuzzConfig::matrix();
    for &cfg in &matrix {
        let engine = run_engine(image, cfg, cpu);
        compare(cfg, &native, &engine).map_err(Box::new)?;
    }
    Ok(CheckSummary {
        configs: matrix.len(),
        state_digest: native.state_digest,
        exit_code: native.exit_code,
        output_lines: native.output.lines().count(),
    })
}

/// Whether `cfg` still diverges from native on `image` (the shrinker's
/// config-axis oracle).
pub fn diverges(image: &Image, cfg: FuzzConfig, cpu: CpuKind) -> bool {
    let native = run_native_baseline(image, cpu);
    let engine = run_engine(image, cfg, cpu);
    compare(cfg, &native, &engine).is_err()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_axis_pair() {
        let m = FuzzConfig::matrix();
        assert_eq!(m.len(), 12);
        let unique: std::collections::BTreeSet<String> = m.iter().map(|c| c.to_string()).collect();
        assert_eq!(unique.len(), 12);
    }

    #[test]
    fn labels_round_trip() {
        for cfg in FuzzConfig::matrix() {
            assert_eq!(FuzzConfig::parse(&cfg.to_string()), Some(cfg));
        }
        assert_eq!(FuzzConfig::parse("nonsense"), None);
        assert_eq!(FuzzConfig::parse("full+nonsense"), None);
    }

    #[test]
    fn simpler_configs_are_strictly_simpler() {
        for cfg in FuzzConfig::matrix() {
            for s in cfg.simpler() {
                assert_ne!(s, cfg);
                assert!(
                    (s.engine, s.client) < (cfg.engine, cfg.client),
                    "{s} is not simpler than {cfg}"
                );
            }
        }
        // The simplest point has nowhere to go.
        assert!(FuzzConfig {
            engine: EngineConfig::Emulate,
            client: ClientChoice::Null
        }
        .simpler()
        .is_empty());
    }

    #[test]
    fn a_trivial_program_passes_the_whole_matrix() {
        let image = rio_workloads::compile(
            "fn main() { var s = 0; var i = 0; while (i < 50) { s = s + i; i++; } print(s); return 7; }",
        )
        .expect("compile");
        let summary = check_image(&image, CpuKind::Pentium4).expect("matrix agrees");
        assert_eq!(summary.configs, 12);
        assert_eq!(summary.exit_code, 7);
        assert_eq!(summary.output_lines, 1);
    }
}
