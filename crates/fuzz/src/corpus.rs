//! The persisted regression corpus: minimized findings as `.dyna` files.
//!
//! Every divergence the campaign discovers is shrunk and saved under
//! `tests/corpus/` as a self-contained Dyna source file whose header
//! comments record the generating seed and the (minimized) configuration
//! that disagreed with native execution. Replay (`rio fuzz --replay`)
//! re-runs every entry through the *entire* configuration matrix — not
//! just the recorded pair — and fails on any divergence, so a corpus entry
//! is a permanent regression test: once its bug is fixed, the entry keeps
//! replaying green in CI forever.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use rio_sim::CpuKind;

use crate::oracle::{check_image, FuzzConfig};

/// One persisted finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The seed whose generated program (before shrinking) diverged.
    pub seed: u64,
    /// The minimized configuration that disagreed with native execution
    /// (`engine+client` label pair), if recorded.
    pub config: Option<String>,
    /// Free-form note (what the divergence was, or why the entry exists).
    pub note: Option<String>,
    /// The minimized Dyna source.
    pub source: String,
}

impl CorpusEntry {
    /// The canonical file name for this entry (`seed-<hex>.dyna`), so
    /// repeated campaigns overwrite rather than accumulate duplicates.
    pub fn file_name(&self) -> String {
        format!("seed-{:016x}.dyna", self.seed)
    }

    /// Serialize to the on-disk format: `//` header lines, then source.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "// rio-fuzz corpus entry (replay: `rio fuzz --replay`)"
        );
        let _ = writeln!(out, "// seed: {:#018x}", self.seed);
        if let Some(cfg) = &self.config {
            let _ = writeln!(out, "// config: {cfg}");
        }
        if let Some(note) = &self.note {
            let _ = writeln!(out, "// note: {note}");
        }
        let _ = writeln!(out);
        out.push_str(&self.source);
        if !self.source.ends_with('\n') {
            out.push('\n');
        }
        out
    }

    /// Parse the on-disk format back. Header lines are optional except the
    /// seed; everything after the header block is the source verbatim.
    pub fn parse(text: &str) -> Result<CorpusEntry, String> {
        let mut seed = None;
        let mut config = None;
        let mut note = None;
        let mut body_at = 0;
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.starts_with("//") || trimmed.is_empty() {
                body_at += line.len() + 1;
                let rest = trimmed.trim_start_matches('/').trim();
                if let Some(v) = rest.strip_prefix("seed:") {
                    let v = v.trim().trim_start_matches("0x");
                    seed = Some(
                        u64::from_str_radix(v, 16).map_err(|e| format!("bad seed `{v}`: {e}"))?,
                    );
                } else if let Some(v) = rest.strip_prefix("config:") {
                    config = Some(v.trim().to_string());
                } else if let Some(v) = rest.strip_prefix("note:") {
                    note = Some(v.trim().to_string());
                }
            } else {
                break;
            }
        }
        let source = text[body_at.min(text.len())..].to_string();
        if source.trim().is_empty() {
            return Err("corpus entry has no source".into());
        }
        Ok(CorpusEntry {
            seed: seed.ok_or("corpus entry is missing a `// seed:` header")?,
            config,
            note,
            source,
        })
    }

    /// The recorded failing configuration, parsed (None when the header is
    /// absent or names an unknown configuration).
    pub fn parsed_config(&self) -> Option<FuzzConfig> {
        self.config.as_deref().and_then(FuzzConfig::parse)
    }

    /// Write the entry into `dir` under its canonical name.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.serialize())?;
        Ok(path)
    }
}

/// Load every `.dyna` entry in `dir`, sorted by file name so the replay
/// order (and therefore the replay report) is deterministic. A missing
/// directory is an empty corpus, not an error.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "dyna"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("cannot read corpus dir {}: {e}", dir.display())),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            let entry = CorpusEntry::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok((p, entry))
        })
        .collect()
}

/// Replay one corpus entry: compile it and run the entire configuration
/// matrix; any divergence (including on the entry's recorded config) is a
/// regression. `Ok` is the deterministic report line.
pub fn replay_entry(name: &str, entry: &CorpusEntry, cpu: CpuKind) -> Result<String, String> {
    let image =
        rio_workloads::compile(&entry.source).map_err(|e| format!("{name}: compile error: {e}"))?;
    match check_image(&image, cpu) {
        Ok(summary) => Ok(format!(
            "ok {name}: seed {:#018x}, {} configs agree (exit {}, digest {:016x})",
            entry.seed, summary.configs, summary.exit_code, summary.state_digest
        )),
        Err(m) => Err(format!("{name}: REGRESSED: {m}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_parse_round_trips() {
        let entry = CorpusEntry {
            seed: 0x5EED_0042,
            config: Some("bounded+combined".into()),
            note: Some("minimized from 214 nodes".into()),
            source: "fn main() { return 3; }".into(),
        };
        let parsed = CorpusEntry::parse(&entry.serialize()).expect("parse");
        assert_eq!(parsed.seed, entry.seed);
        assert_eq!(parsed.config, entry.config);
        assert_eq!(parsed.note, entry.note);
        assert_eq!(parsed.source.trim(), entry.source);
        assert_eq!(
            parsed.parsed_config().map(|c| c.to_string()).as_deref(),
            Some("bounded+combined")
        );
    }

    #[test]
    fn parse_rejects_headerless_and_empty_entries() {
        assert!(CorpusEntry::parse("fn main() { return 0; }").is_err());
        assert!(CorpusEntry::parse("// seed: 0x10\n").is_err());
    }

    #[test]
    fn file_names_are_canonical_per_seed() {
        let e = CorpusEntry {
            seed: 7,
            config: None,
            note: None,
            source: "x".into(),
        };
        assert_eq!(e.file_name(), "seed-0000000000000007.dyna");
    }
}
