//! # rio-fuzz — differential conformance fuzzing for the rio engine
//!
//! The engine's contract is simple to state: a program under `rio` must
//! behave exactly as it does natively, for every configuration of the
//! engine and for every client. This crate turns that contract into a
//! fuzzing campaign:
//!
//! * [`gen`] — a deterministic generator of Dyna programs (seeded by a
//!   xorshift64* [`Rng`]; seed = program identity). Programs exercise the
//!   parts of the engine where transparency bugs live: division faults
//!   and handler delivery, self-modifying stores into watched code,
//!   deep call/return chains, and indirect-call tables.
//! * [`oracle`] — runs a program natively and through a 12-point
//!   configuration matrix (emulation, cache, traces, bounded cache,
//!   single-instruction stepping, verifier; each × null/combined
//!   clients), comparing output, exit code, a digest of final
//!   app-visible state, and verifier violations.
//! * [`shrink`] — delta-debugs a finding to a minimal statement tree and
//!   the simplest configuration that still diverges.
//! * [`corpus`] — persists minimized findings as `tests/corpus/*.dyna`
//!   regression tests that replay through the whole matrix.
//! * [`campaign`] — ties it together over [`rio_bench::run_parallel`],
//!   so campaign output is byte-identical at any `--jobs N`.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use campaign::{run_campaign, run_seed, CampaignOptions, DEFAULT_BASE_SEED};
pub use corpus::{load_dir, replay_entry, CorpusEntry};
pub use gen::{render, Program, E, S};
pub use oracle::{
    check_image, diverges, run_engine, run_native_baseline, CheckSummary, ClientChoice,
    EngineConfig, FuzzConfig, Mismatch, Outcome,
};
pub use rng::Rng;
pub use shrink::{shrink_config, shrink_program};
