//! The deterministic PRNG every randomized harness in the workspace uses.
//!
//! xorshift64*: tiny, fast, and — critically for this repository — fully
//! reproducible. The container builds offline, so no external fuzzing or
//! randomness crates are available; a fixed seed therefore identifies a
//! generated program exactly, which is what lets the corpus persist
//! `{seed, minimized source}` pairs and replay them bit-identically.

/// A small, fast, deterministic PRNG (xorshift64*) for the randomized
/// harnesses. Fixed seeds make every generated program reproducible.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Seeded construction; two different seeds give independent streams.
    pub fn new(seed: u64) -> Rng {
        // Avoid the all-zeros fixed point and decorrelate small seeds.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `i32` in the half-open range `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "empty range");
        let span = (hi as i64 - lo as i64) as u64;
        lo.wrapping_add((self.next_u64() % span) as i32)
    }

    /// Borrow a uniformly random element of `xs`.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// A coin flip that is true with probability `num`/`den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        (self.next_u64() % den as u64) < num as u64
    }

    /// Random bool.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range_i32(-50, 50);
            assert!((-50..50).contains(&v));
            assert!(r.below(3) < 3);
        }
    }
}
