//! The fuzzing campaign: seeds → programs → config matrix → findings.
//!
//! A campaign is a deterministic function of `(base seed, seed count,
//! cpu)`: seed *i* generates program *i*, the program runs through the
//! whole configuration matrix, and any divergence is shrunk (statement
//! tree first, then the configuration axes) and persisted to the corpus.
//! Campaign items are distributed over [`rio_bench::run_parallel`]'s
//! worker pool and the per-seed report lines are collected in item order,
//! so output is byte-identical for any `--jobs N` — the same property
//! every other suite in the repository holds, and what lets CI diff a
//! 1-worker campaign against a 4-worker one.

use std::path::PathBuf;

use rio_sim::CpuKind;

use crate::corpus::CorpusEntry;
use crate::gen::{render, Program, S};
use crate::oracle::{check_image, diverges};
use crate::shrink::{shrink_config, shrink_program};

/// Default base seed: campaign seed `i` is `DEFAULT_BASE_SEED + i`.
pub const DEFAULT_BASE_SEED: u64 = 0x5EED_0000;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Number of seeds to run.
    pub seeds: u64,
    /// First seed (entry `i` uses `base_seed + i`).
    pub base_seed: u64,
    /// Processor model.
    pub cpu: CpuKind,
    /// Worker threads.
    pub jobs: usize,
    /// Where to persist minimized findings; `None` disables persistence
    /// (findings are still shrunk and reported).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            seeds: 64,
            base_seed: DEFAULT_BASE_SEED,
            cpu: CpuKind::Pentium4,
            jobs: 1,
            corpus_dir: None,
        }
    }
}

/// Run one campaign seed end to end. `Ok` is the deterministic report
/// line; `Err` describes a finding (already shrunk, and persisted when a
/// corpus directory is configured).
pub fn run_seed(
    seed: u64,
    cpu: CpuKind,
    corpus_dir: Option<&std::path::Path>,
) -> Result<String, String> {
    let program = Program::generate(seed);
    let source = program.source();
    let image = match rio_workloads::compile(&source) {
        Ok(image) => image,
        Err(e) => {
            return Err(format!(
                "seed {seed:#018x}: generated program failed to compile: {e}"
            ))
        }
    };
    let mismatch = match check_image(&image, cpu) {
        Ok(summary) => {
            return Ok(format!(
            "ok seed {seed:#018x}: {} nodes, {} configs agree (exit {}, {} lines, digest {:016x})",
            program.nodes(),
            summary.configs,
            summary.exit_code,
            summary.output_lines,
            summary.state_digest
        ))
        }
        Err(m) => *m,
    };
    // A finding. Shrink the statement tree against the failing config,
    // then walk the config itself down the lattice.
    let failing = mismatch.config;
    let reproduces = |stmts: &[S]| match rio_workloads::compile(&render(stmts)) {
        Ok(image) => diverges(&image, failing, cpu),
        Err(_) => false, // a shrink step must stay compilable
    };
    let minimized = shrink_program(&program.stmts, reproduces);
    let min_source = render(&minimized);
    let min_image =
        rio_workloads::compile(&min_source).expect("shrinker only accepts compilable programs");
    let min_config = shrink_config(failing, |cfg| diverges(&min_image, cfg, cpu));
    let entry = CorpusEntry {
        seed,
        config: Some(min_config.to_string()),
        note: Some(format!(
            "minimized {} -> {} nodes; originally {mismatch}",
            program.nodes(),
            minimized.iter().map(S::nodes).sum::<usize>()
        )),
        source: min_source,
    };
    let saved = match corpus_dir {
        Some(dir) => match entry.save(dir) {
            Ok(path) => format!(", saved {}", path.display()),
            Err(e) => format!(", corpus save FAILED: {e}"),
        },
        None => String::new(),
    };
    Err(format!(
        "seed {seed:#018x}: {mismatch}; minimized to {} nodes under {min_config}{saved}",
        minimized.iter().map(S::nodes).sum::<usize>()
    ))
}

/// Run a whole campaign on the worker pool; report lines come back in
/// seed order regardless of the job count.
pub fn run_campaign(opts: &CampaignOptions) -> Vec<Result<String, String>> {
    let seeds: Vec<u64> = (0..opts.seeds).map(|i| opts.base_seed + i).collect();
    rio_bench::run_parallel(&seeds, opts.jobs, |_, &seed| {
        run_seed(seed, opts.cpu, opts.corpus_dir.as_deref())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_campaign_is_clean_and_job_count_invariant() {
        let mk = |jobs| CampaignOptions {
            seeds: 4,
            base_seed: DEFAULT_BASE_SEED,
            cpu: CpuKind::Pentium4,
            jobs,
            corpus_dir: None,
        };
        let one = run_campaign(&mk(1));
        let four = run_campaign(&mk(4));
        assert_eq!(one, four, "campaign report depends on the job count");
        for row in &one {
            let line = row.as_ref().unwrap_or_else(|e| panic!("finding: {e}"));
            assert!(line.starts_with("ok seed "), "unexpected row: {line}");
        }
    }
}
