//! Deterministic structured program generator for differential fuzzing.
//!
//! This is the `S`/`E` statement-tree generator originally grown inside the
//! integration tests, promoted to a library and extended to reach every
//! transparency mechanism the engine has: besides loops, branches,
//! switches, stores, helper calls, and indirect calls, generated programs
//! now contain
//!
//! * **division** — guarded (divisor forced nonzero) and unguarded (the
//!   divisor is an arbitrary subexpression, so genuine divide errors are
//!   raised and delivered to the program's registered fault handler, whose
//!   count and pc checksum are printed — fault delivery must agree across
//!   every execution mode for runs to compare equal);
//! * **`poke` self-modifying stores** into a victim function that is then
//!   called (directly or through a pointer), exercising write monitoring,
//!   precise invalidation, and rebuilds;
//! * **deep call/return chains** through a bounded recursive function
//!   (return-address-stack pressure — depth exceeds the simulator's RAS);
//! * **indirect-call tables** — `icall` through a four-entry function
//!   pointer table indexed by a random expression, exercising the
//!   indirect-branch lookup and trace inline checks.
//!
//! Everything derives from the workspace's xorshift64* [`Rng`](crate::Rng):
//! a seed *is* a program, and rendering is pure, so a persisted seed
//! reproduces its source bit-identically forever. All loops are bounded
//! counters and recursion depth is masked, so every program terminates; the
//! only faults are divide errors, which the preamble's handler recovers in
//! native and engine runs alike.

use crate::rng::Rng;

/// A bounded random statement. Variables come from a fixed pool (`v0..v3`
/// locals, `g0..g1` globals, array `arr`); all loops are bounded counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum S {
    /// `vN = expr;`
    Assign(u8, E),
    /// `vN++;` / `vN--;`
    Bump(u8, bool),
    /// `arr[(i) & 31] = expr;`
    Store(E, E),
    /// Bounded counter loop.
    Loop(u8, Vec<S>),
    /// Two-way branch.
    If(E, Vec<S>, Vec<S>),
    /// Four-way switch with a default arm.
    Switch(E, Vec<Vec<S>>),
    /// `g1 = helper(expr);`
    CallHelper(E),
    /// `print(expr & 4095);`
    Print(E),
    /// Self-modifying store: re-patch the victim function's body to return
    /// the given value, then call it — directly (`false`) or through its
    /// pointer with `icall` (`true`).
    Patch(u8, bool),
}

/// A bounded random expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum E {
    /// Integer literal.
    K(i32),
    /// Local `v0..v3`.
    V(u8),
    /// Global `g0..g1`.
    G(u8),
    /// `arr[(i) & 31]`.
    Load(Box<E>),
    /// Addition.
    Add(Box<E>, Box<E>),
    /// Subtraction.
    Sub(Box<E>, Box<E>),
    /// Multiplication (left factor masked to bound products).
    Mul(Box<E>, Box<E>),
    /// `expr & 65535`.
    Mask(Box<E>),
    /// `a < b` (0 or 1).
    Cmp(Box<E>, Box<E>),
    /// Direct helper call.
    Helper(Box<E>),
    /// Indirect helper call through the `hptr` global.
    IHelper(Box<E>),
    /// Guarded division: the divisor is masked and offset so it is never
    /// zero — pure arithmetic, no faults.
    DivG(Box<E>, Box<E>),
    /// Guarded remainder.
    RemG(Box<E>, Box<E>),
    /// Unguarded division: the divisor is an arbitrary subexpression, so a
    /// zero raises a genuine divide error delivered to the fault handler.
    DivU(Box<E>, Box<E>),
    /// Unguarded remainder.
    RemU(Box<E>, Box<E>),
    /// Deep call/return chain: `rec((x) & 31)` recurses up to 31 frames,
    /// overflowing the 16-entry return address stack.
    Rec(Box<E>),
    /// Indirect call through the four-entry function-pointer table.
    TableCall(Box<E>, Box<E>),
}

impl E {
    /// Render to Dyna source.
    pub fn src(&self) -> String {
        match self {
            E::K(k) => format!("({k})"),
            E::V(i) => format!("v{}", i % 4),
            E::G(i) => format!("g{}", i % 2),
            E::Load(i) => format!("arr[({}) & 31]", i.src()),
            E::Add(a, b) => format!("({} + {})", a.src(), b.src()),
            E::Sub(a, b) => format!("({} - {})", a.src(), b.src()),
            E::Mul(a, b) => format!("({} * {})", a.src(), b.src()),
            E::Mask(a) => format!("({} & 65535)", a.src()),
            E::Cmp(a, b) => format!("({} < {})", a.src(), b.src()),
            E::Helper(a) => format!("helper({})", a.src()),
            E::IHelper(a) => format!("icall(hptr, {})", a.src()),
            E::DivG(a, b) => format!("({} / (({} & 15) + 1))", a.src(), b.src()),
            E::RemG(a, b) => format!("({} % (({} & 15) + 1))", a.src(), b.src()),
            E::DivU(a, b) => format!("({} / {})", a.src(), b.src()),
            E::RemU(a, b) => format!("({} % {})", a.src(), b.src()),
            E::Rec(a) => format!("rec(({}) & 31)", a.src()),
            E::TableCall(i, x) => format!("icall(tbl[({}) & 3], {})", i.src(), x.src()),
        }
    }

    /// Number of tree nodes (the shrinker's size metric).
    pub fn nodes(&self) -> usize {
        1 + match self {
            E::K(_) | E::V(_) | E::G(_) => 0,
            E::Load(a) | E::Mask(a) | E::Helper(a) | E::IHelper(a) | E::Rec(a) => a.nodes(),
            E::Add(a, b)
            | E::Sub(a, b)
            | E::Mul(a, b)
            | E::Cmp(a, b)
            | E::DivG(a, b)
            | E::RemG(a, b)
            | E::DivU(a, b)
            | E::RemU(a, b)
            | E::TableCall(a, b) => a.nodes() + b.nodes(),
        }
    }
}

impl S {
    /// Render to Dyna source at the given indentation depth.
    pub fn src(&self, out: &mut String, depth: usize) {
        let pad = "    ".repeat(depth + 1);
        match self {
            S::Assign(v, e) => out.push_str(&format!("{pad}v{} = {};\n", v % 4, e.src())),
            S::Bump(v, up) => out.push_str(&format!(
                "{pad}v{}{};\n",
                v % 4,
                if *up { "++" } else { "--" }
            )),
            S::Store(i, e) => {
                out.push_str(&format!("{pad}arr[({}) & 31] = {};\n", i.src(), e.src()))
            }
            S::Loop(n, body) => {
                let var = format!("l{depth}");
                out.push_str(&format!("{pad}var {var} = 0;\n"));
                out.push_str(&format!("{pad}while ({var} < {}) {{\n", n % 6 + 1));
                for s in body {
                    s.src(out, depth + 1);
                }
                out.push_str(&format!("{pad}    {var}++;\n{pad}}}\n"));
            }
            S::If(c, t, e) => {
                out.push_str(&format!("{pad}if ({}) {{\n", c.src()));
                for s in t {
                    s.src(out, depth + 1);
                }
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in e {
                    s.src(out, depth + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            S::Switch(e, cases) => {
                out.push_str(&format!("{pad}switch (({}) & 3) {{\n", e.src()));
                for (k, body) in cases.iter().enumerate() {
                    out.push_str(&format!("{pad}    case {k} {{\n"));
                    for s in body {
                        s.src(out, depth + 2);
                    }
                    out.push_str(&format!("{pad}    }}\n"));
                }
                out.push_str(&format!("{pad}    default {{ g0 = g0 + 1; }}\n{pad}}}\n"));
            }
            S::CallHelper(e) => out.push_str(&format!("{pad}g1 = helper({});\n", e.src())),
            S::Print(e) => out.push_str(&format!("{pad}print({} & 4095);\n", e.src())),
            S::Patch(val, indirect) => {
                // The six-byte `mov %eax, imm32; ret` patch encoding shared
                // with the SMC workloads: valid for values below 128.
                let word0 = 184 + 256 * u32::from(val % 128);
                out.push_str(&format!("{pad}poke(pp, {word0});\n"));
                out.push_str(&format!(
                    "{pad}poke(pp + 4, {});\n",
                    rio_workloads::smc::RET_WORD
                ));
                if *indirect {
                    out.push_str(&format!("{pad}g1 = (g1 + icall(pp)) & 1048575;\n"));
                } else {
                    out.push_str(&format!("{pad}g1 = (g1 + victim()) & 1048575;\n"));
                }
            }
        }
    }

    /// Number of tree nodes (the shrinker's size metric).
    pub fn nodes(&self) -> usize {
        1 + match self {
            S::Assign(_, e) | S::CallHelper(e) | S::Print(e) => e.nodes(),
            S::Bump(..) | S::Patch(..) => 0,
            S::Store(i, e) => i.nodes() + e.nodes(),
            S::Loop(_, body) => body.iter().map(S::nodes).sum(),
            S::If(c, t, e) => {
                c.nodes()
                    + t.iter().map(S::nodes).sum::<usize>()
                    + e.iter().map(S::nodes).sum::<usize>()
            }
            S::Switch(e, cases) => {
                e.nodes()
                    + cases
                        .iter()
                        .map(|b| b.iter().map(S::nodes).sum::<usize>())
                        .sum::<usize>()
            }
        }
    }
}

/// Generate a random expression of bounded depth.
pub fn gen_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.chance(1, 3) {
        return match rng.below(3) {
            0 => E::K(rng.range_i32(-50, 50)),
            1 => E::V(rng.below(4) as u8),
            _ => E::G(rng.below(2) as u8),
        };
    }
    let sub = |rng: &mut Rng, d: u32| Box::new(gen_expr(rng, d));
    match rng.below(13) {
        0 => {
            let a = sub(rng, depth - 1);
            let b = sub(rng, depth - 1);
            E::Add(a, b)
        }
        1 => {
            let a = sub(rng, depth - 1);
            let b = sub(rng, depth - 1);
            E::Sub(a, b)
        }
        2 => {
            // Mask the left factor to keep products from overflowing too
            // wildly (matches the original generator's shape).
            let a = sub(rng, depth - 1);
            let b = sub(rng, depth - 1);
            E::Mul(Box::new(E::Mask(a)), b)
        }
        3 => {
            let a = sub(rng, depth - 1);
            let b = sub(rng, depth - 1);
            E::Cmp(a, b)
        }
        4 => E::Load(sub(rng, depth - 1)),
        5 => E::Helper(sub(rng, depth - 1)),
        6 => E::IHelper(sub(rng, depth - 1)),
        7 => {
            let a = sub(rng, depth - 1);
            let b = sub(rng, depth - 1);
            E::DivG(a, b)
        }
        8 => {
            let a = sub(rng, depth - 1);
            let b = sub(rng, depth - 1);
            E::RemG(a, b)
        }
        9 => {
            let a = sub(rng, depth - 1);
            let b = sub(rng, depth - 1);
            if rng.flip() {
                E::DivU(a, b)
            } else {
                E::RemU(a, b)
            }
        }
        10 => E::Rec(sub(rng, depth - 1)),
        _ => {
            let i = sub(rng, depth - 1);
            let x = sub(rng, depth - 1);
            E::TableCall(i, x)
        }
    }
}

/// Generate a random statement of bounded nesting depth.
pub fn gen_stmt(rng: &mut Rng, depth: u32) -> S {
    let simple = |rng: &mut Rng| match rng.below(6) {
        0 => S::Assign(rng.below(4) as u8, gen_expr(rng, 3)),
        1 => S::Bump(rng.below(4) as u8, rng.flip()),
        2 => {
            let i = gen_expr(rng, 2);
            let e = gen_expr(rng, 3);
            S::Store(i, e)
        }
        3 => S::CallHelper(gen_expr(rng, 3)),
        4 => S::Print(gen_expr(rng, 3)),
        _ => S::Patch(rng.below(128) as u8, rng.flip()),
    };
    if depth == 0 {
        return simple(rng);
    }
    // 4:1:1:1 weighting of simple vs compound statements.
    match rng.below(7) {
        0..=3 => simple(rng),
        4 => {
            let n = rng.below(6) as u8;
            let body = gen_body(rng, depth - 1);
            S::Loop(n, body)
        }
        5 => {
            let c = gen_expr(rng, 2);
            let t = gen_body(rng, depth - 1);
            let e = gen_body(rng, depth - 1);
            S::If(c, t, e)
        }
        _ => {
            let e = gen_expr(rng, 2);
            let cases = (0..4).map(|_| gen_body(rng, depth - 1)).collect();
            S::Switch(e, cases)
        }
    }
}

/// Generate a short statement list.
pub fn gen_body(rng: &mut Rng, depth: u32) -> Vec<S> {
    (0..1 + rng.below(3))
        .map(|_| gen_stmt(rng, depth))
        .collect()
}

/// A generated program: the seed that produced it plus its statement tree.
#[derive(Clone, Debug)]
pub struct Program {
    /// The seed `generate` was called with.
    pub seed: u64,
    /// Top-level statements of `main`'s body.
    pub stmts: Vec<S>,
}

impl Program {
    /// Deterministically generate the program for a seed.
    pub fn generate(seed: u64) -> Program {
        let mut rng = Rng::new(seed);
        let stmts = (0..2 + rng.below(6))
            .map(|_| gen_stmt(&mut rng, 2))
            .collect();
        Program { seed, stmts }
    }

    /// Render to complete Dyna source.
    pub fn source(&self) -> String {
        render(&self.stmts)
    }

    /// Total statement/expression nodes (the shrinker's size metric).
    pub fn nodes(&self) -> usize {
        self.stmts.iter().map(S::nodes).sum()
    }
}

/// Render a statement list into a complete Dyna program.
///
/// The fixed preamble provides everything generated statements reference: a
/// fault handler (registered first, so unguarded division is always
/// recoverable — and its count/pc checksum is printed, making fault
/// *delivery* part of the differential contract), the direct/indirect
/// helper, the bounded recursion chain, the patchable victim function, and
/// the indirect-call table. The postamble folds locals, globals, and the
/// array into a printed checksum so silent state corruption surfaces in the
/// output even before the register/global digest comparison.
pub fn render(stmts: &[S]) -> String {
    let mut body = String::new();
    for s in stmts {
        s.src(&mut body, 0);
    }
    format!(
        "global g0 = 3; global g1 = 5; global arr[32]; global hptr = 0;
         global pp = 0; global tbl[4];
         global fcnt = 0; global facc = 0;
         fn fh(kind, pc) {{
             fcnt = fcnt + 1;
             facc = (facc + kind * 7 + pc % 251) & 1048575;
             return 0;
         }}
         fn helper(x) {{ return (x & 16383) * 3 - g0; }}
         fn rec(n) {{
             if (n < 1) {{ return g0 & 7; }}
             return (rec(n - 1) + (n & 1023)) & 262143;
         }}
         fn victim() {{
             var a = 1; var b = 2; var c = 3;
             return a + b + c;
         }}
         fn t0(x) {{ return (x & 8191) * 5 + g0; }}
         fn t1(x) {{ return (x ^ 1023) + 7; }}
         fn t2(x) {{ return (x & 4095) - g1; }}
         fn t3(x) {{ return helper(x) + 1; }}
         fn main() {{
             sethandler(&fh);
             hptr = &helper;
             pp = &victim;
             tbl[0] = &t0; tbl[1] = &t1; tbl[2] = &t2; tbl[3] = &t3;
             var v0 = 1; var v1 = 2; var v2 = 3; var v3 = 4;
             var i = 0;
             while (i < 32) {{ arr[i] = i * 7 - 20; i++; }}
{body}
             var chk = (v0 ^ v1) + (v2 ^ v3) + g0 + g1;
             i = 0;
             while (i < 32) {{ chk = chk + arr[i]; i++; }}
             print(chk & 1048575);
             print(fcnt);
             print(facc);
             return chk % 251;
         }}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Program::generate(0xDEAD_BEEF);
        let b = Program::generate(0xDEAD_BEEF);
        assert_eq!(a.stmts, b.stmts);
        assert_eq!(a.source(), b.source());
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let distinct: std::collections::HashSet<String> =
            (0..32).map(|s| Program::generate(s).source()).collect();
        assert!(
            distinct.len() > 28,
            "only {} distinct programs",
            distinct.len()
        );
    }

    #[test]
    fn every_generated_program_compiles() {
        for seed in 0..64 {
            let p = Program::generate(seed);
            rio_workloads::compile(&p.source())
                .unwrap_or_else(|e| panic!("seed {seed} failed to compile: {e}\n{}", p.source()));
        }
    }

    #[test]
    fn new_constructs_appear_across_seeds() {
        // Over a modest seed range the generator must actually exercise the
        // new constructs (division, poke patches, recursion, call tables).
        let all: String = (0..64).map(|s| Program::generate(s).source()).collect();
        for needle in ["poke(pp", " / ", " % ", "rec((", "icall(tbl["] {
            assert!(all.contains(needle), "missing construct {needle:?}");
        }
    }

    #[test]
    fn node_count_matches_structure() {
        let p = Program {
            seed: 0,
            stmts: vec![
                S::Assign(0, E::Add(Box::new(E::K(1)), Box::new(E::V(0)))),
                S::Bump(1, true),
            ],
        };
        // Assign(1) + Add(1) + K(1) + V(1) = 4, Bump = 1.
        assert_eq!(p.nodes(), 5);
    }
}
